"""Outcome classification, trace canonicalisation, and the faults CLI."""

from dataclasses import dataclass

import pytest

from repro.__main__ import main
from repro.faults import FaultPlan, run_under_faults, trace_digest
from repro.faults.runner import OUTCOMES, canonical_trace


@dataclass
class _Ev:
    rank: int
    category: str
    primitive: str
    nbytes: int
    t_start: float
    t_end: float
    peer: int = -1
    cid: int = -1
    msg_id: int = -1


class TestCanonicalTrace:
    def test_msg_ids_remapped_by_first_appearance(self):
        """Two runs whose global msg counters started at different values
        canonicalise to the same bytes."""

        def events(base):
            return [
                _Ev(0, "p2p", "MPI_Send", 8, 0.0, 1.0, peer=1, msg_id=base),
                _Ev(1, "p2p", "MPI_Recv", 8, 0.0, 1.5, peer=0, msg_id=base),
            ]

        assert canonical_trace(events(17), 2) == canonical_trace(events(99), 2)

    def test_thread_interleaving_is_invisible(self):
        a = [
            _Ev(0, "compute", "compute", 0, 0.0, 1.0),
            _Ev(1, "compute", "compute", 0, 0.0, 2.0),
        ]
        assert canonical_trace(a, 2) == canonical_trace(list(reversed(a)), 2)

    def test_real_differences_change_the_digest(self):
        a = [_Ev(0, "compute", "compute", 0, 0.0, 1.0)]
        b = [_Ev(0, "compute", "compute", 0, 0.0, 2.0)]
        assert trace_digest(a, 1) != trace_digest(b, 1)


class TestOutcomes:
    def test_survived_when_no_fault_fires(self):
        report = run_under_faults("ring", FaultPlan())
        assert report.outcome == "survived"
        assert report.error is None
        assert report.fault_events == {}
        assert report.result is not None

    def test_aborted_when_the_ring_loses_a_message(self):
        report = run_under_faults("ring", FaultPlan().drop(src=0, count=1))
        assert report.outcome == "aborted"
        assert report.error is not None
        assert report.fault_events.get("fault_drop", 0) >= 1
        assert report.result is None

    def test_degraded_when_faults_fire_but_the_job_finishes(self):
        plan = FaultPlan(seed=5).drop(src=2, dst=0).crash(rank=3, at_time=0.0)
        report = run_under_faults("resilient", plan)
        assert report.outcome == "degraded"
        assert report.crashed_ranks == (3,)
        assert report.fault_events.get("fault_crash") == 1
        assert report.result[0]["lost_ranks"] == [2, 3]

    def test_every_outcome_is_registered(self):
        assert OUTCOMES == ("survived", "degraded", "aborted")

    def test_report_lines_render(self):
        report = run_under_faults("pingpong", FaultPlan())
        text = "\n".join(report.lines())
        assert "outcome:   survived" in text
        assert "sha256:" in text


class TestDeterminism:
    """Same seed + same plan => byte-identical canonical traces."""

    PLAN = FaultPlan(seed=3).drop(probability=0.3).delay(1e-4, probability=0.5)

    def test_same_plan_same_digest(self):
        first = run_under_faults("randomcomm", self.PLAN)
        second = run_under_faults("randomcomm", self.PLAN)
        assert first.digest == second.digest
        assert first.fault_events == second.fault_events
        assert first.outcome == second.outcome

    def test_different_seed_different_faults(self):
        import dataclasses

        other = dataclasses.replace(self.PLAN, seed=4)
        a = run_under_faults("randomcomm", self.PLAN)
        b = run_under_faults("randomcomm", other)
        assert a.digest != b.digest


PLAN_TOML = """
seed = 5

[[drop]]
src = 2
dst = 0

[[crash]]
rank = 3
at_time = 0.0
"""


class TestCli:
    def test_list(self, capsys):
        assert main(["faults", "--list"]) == 0
        out = capsys.readouterr().out
        assert "resilient" in out and "ring" in out

    def test_missing_workload_is_an_error(self, capsys):
        assert main(["faults"]) == 2

    def test_bad_expect_value(self, capsys):
        assert main(["faults", "ring", "--expect", "fine"]) == 2

    def test_bad_param(self, capsys):
        assert main(["faults", "ring", "-p", "oops"]) == 2

    def test_empty_plan_survives(self, capsys):
        assert main(["faults", "ring", "--expect", "survived"]) == 0
        out = capsys.readouterr().out
        assert "empty plan" in out
        assert "outcome:   survived" in out

    def test_toml_plan_expected_degraded(self, tmp_path, capsys):
        plan = tmp_path / "plan.toml"
        plan.write_text(PLAN_TOML)
        argv = ["faults", "resilient", "--plan", str(plan), "--expect", "degraded"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "crash rank 3" in out
        assert "outcome:   degraded" in out

    def test_expect_mismatch_fails(self, tmp_path, capsys):
        plan = tmp_path / "plan.toml"
        plan.write_text(PLAN_TOML)
        argv = ["faults", "resilient", "--plan", str(plan), "--expect", "survived"]
        assert main(argv) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_seed_override_and_waits(self, capsys):
        argv = ["faults", "resilient", "--seed", "9", "--waits"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "seed=9" in out
        assert "Wait states" in out

"""Cross-cutting validation coverage: constructor and argument guards
that protect users from silent misconfiguration."""

import pytest

from repro import smpi
from repro.cluster import ClusterSpec, NodeSpec, Placement
from repro.errors import SchedulerError, SMPIError, ValidationError
from repro.slurm import JobSpec, Scheduler, WorkloadProfile
from repro.smpi.runtime import World


def test_core_bandwidth_cannot_exceed_node_bandwidth():
    with pytest.raises(ValidationError):
        NodeSpec(mem_bandwidth=1e10, core_mem_bandwidth=2e10)


def test_core_bandwidth_default_quarter():
    node = NodeSpec(mem_bandwidth=4e10)
    assert node.core_mem_bandwidth == pytest.approx(1e10)


def test_world_requires_positive_nprocs():
    with pytest.raises(SMPIError):
        World(0)


def test_world_placement_size_mismatch():
    spec = ClusterSpec(num_nodes=1, node=NodeSpec(cores=8))
    place = Placement.block(spec, 4)
    with pytest.raises(SMPIError):
        World(6, cluster=spec, placement=place)


def test_world_infers_cluster_from_placement():
    spec = ClusterSpec(num_nodes=2, node=NodeSpec(cores=4))
    place = Placement.spread(spec, 4)

    def fn(comm):
        return comm.Get_processor_name()

    names = smpi.run(4, fn, placement=place)
    assert names == ["node000", "node001", "node000", "node001"]


def test_run_and_launch_agree():
    def fn(comm):
        return comm.allreduce(comm.rank)

    assert smpi.run(3, fn) == smpi.launch(3, fn).results


def test_scheduler_rejects_submission_in_the_past():
    sched = Scheduler(num_nodes=1)
    sched.submit(JobSpec("a", WorkloadProfile(1.0)), at=5.0)
    sched.run()
    assert sched.now >= 5.0
    with pytest.raises(SchedulerError):
        sched.submit(JobSpec("b", WorkloadProfile(1.0)), at=1.0)


def test_scheduler_cancel_completed_is_noop():
    sched = Scheduler(num_nodes=1)
    job = sched.submit(JobSpec("a", WorkloadProfile(1.0)))
    sched.run()
    before = sched.record(job).state
    sched.cancel(job)
    assert sched.record(job).state == before


def test_scheduler_accepts_jobs_while_draining():
    sched = Scheduler(num_nodes=1, cores_per_node=2)
    first = sched.submit(JobSpec("a", WorkloadProfile(10.0), ntasks=2))
    sched.step()  # a starts
    late = sched.submit(JobSpec("b", WorkloadProfile(1.0), ntasks=2))
    sched.run()
    assert sched.record(late).start_time == pytest.approx(10.0)
    assert sched.record(first).state.finished


def test_negative_compute_work_rejected():
    def fn(comm):
        comm.compute(flops=-5)

    with pytest.raises(ValidationError):
        smpi.run(1, fn)


def test_predicted_misses_validates_tile():
    from repro.modules.module2_distance import predicted_misses

    with pytest.raises(ValidationError):
        predicted_misses(10, 10, 4, tile=0)


def test_quiz_points_grid_is_positive():
    from repro.edu.quiz import QUIZZES

    assert all(q.points > 0 for q in QUIZZES)

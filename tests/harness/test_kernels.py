"""Backend parity for the vectorized module kernels.

``repro.harness.kernels`` selects numpy or the pure-Python fallback at
import time; the modules' numerics must not depend on which backend won.
These tests run both implementations side by side (forcing the python
path in a subprocess, since the selection is an import-time decision)
and assert the results agree.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.harness import kernels


def _python_backend(snippet: str) -> dict:
    """Run ``snippet`` under REPRO_PURE_PYTHON_KERNELS=1 in a fresh
    interpreter; the snippet must print one JSON object."""
    env = dict(os.environ, REPRO_PURE_PYTHON_KERNELS="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    out = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True, text=True, env=env,
        cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        check=True,
    )
    return json.loads(out.stdout)


def test_numpy_backend_selected_by_default():
    assert kernels.HAVE_NUMPY
    assert kernels.KERNEL_BACKEND == "numpy"


def test_pairwise_block_backends_agree():
    rng = np.random.default_rng(7)
    a, b = rng.normal(size=(5, 4)), rng.normal(size=(6, 4))
    fast = kernels.pairwise_block(a, b)
    got = _python_backend(
        "import json, numpy as np\n"
        "from repro.harness import kernels\n"
        "assert kernels.KERNEL_BACKEND == 'python', kernels.KERNEL_BACKEND\n"
        "rng = np.random.default_rng(7)\n"
        "a, b = rng.normal(size=(5, 4)), rng.normal(size=(6, 4))\n"
        "print(json.dumps(np.asarray(kernels.pairwise_block(a, b)).tolist()))\n"
    )
    np.testing.assert_allclose(np.asarray(got), fast, rtol=1e-10, atol=1e-12)


def test_kmeans_kernels_backends_agree():
    rng = np.random.default_rng(3)
    pts, cen = rng.normal(size=(40, 3)), rng.normal(size=(5, 3))
    labels = kernels.kmeans_assign(pts, cen)
    sums, counts = kernels.kmeans_update(pts, labels, 5)
    new = kernels.centroid_step(sums, counts, cen)
    got = _python_backend(
        "import json, numpy as np\n"
        "from repro.harness import kernels\n"
        "rng = np.random.default_rng(3)\n"
        "pts, cen = rng.normal(size=(40, 3)), rng.normal(size=(5, 3))\n"
        "labels = kernels.kmeans_assign(pts, cen)\n"
        "sums, counts = kernels.kmeans_update(pts, labels, 5)\n"
        "new = kernels.centroid_step(sums, counts, cen)\n"
        "print(json.dumps({'labels': np.asarray(labels).tolist(),"
        " 'sums': np.asarray(sums).tolist(),"
        " 'counts': np.asarray(counts).tolist(),"
        " 'new': np.asarray(new).tolist()}))\n"
    )
    np.testing.assert_array_equal(np.asarray(got["labels"]), labels)
    np.testing.assert_allclose(np.asarray(got["sums"]), sums, rtol=1e-10)
    np.testing.assert_allclose(np.asarray(got["counts"]), counts)
    np.testing.assert_allclose(np.asarray(got["new"]), new, rtol=1e-10)


def test_histogram_cuts_backends_agree():
    rng = np.random.default_rng(11)
    sample = rng.exponential(size=500)
    fast = kernels.histogram_cuts(sample, p=8, bins=64)
    got = _python_backend(
        "import json, numpy as np\n"
        "from repro.harness import kernels\n"
        "rng = np.random.default_rng(11)\n"
        "sample = rng.exponential(size=500)\n"
        "print(json.dumps(np.asarray("
        "kernels.histogram_cuts(sample, p=8, bins=64)).tolist()))\n"
    )
    np.testing.assert_allclose(np.asarray(got), fast, rtol=1e-9, atol=1e-12)


def test_modules_route_through_kernels():
    """The module entry points and the kernels produce identical numbers
    (the delegation is real, and cost charging stayed in the modules)."""
    from repro.modules.module2_distance import pairwise_distances
    from repro.modules.module3_sort import histogram_splitters
    from repro.modules.module5_kmeans import assign_points

    rng = np.random.default_rng(5)
    a = rng.normal(size=(6, 4))
    np.testing.assert_array_equal(
        pairwise_distances(a), kernels.pairwise_block(a, a)
    )
    cen = rng.normal(size=(3, 4))
    np.testing.assert_array_equal(
        assign_points(a, cen), kernels.kmeans_assign(a, cen)
    )
    sample = rng.exponential(size=200)
    np.testing.assert_array_equal(
        histogram_splitters(sample, p=4, bins=32),
        kernels.histogram_cuts(sample, p=4, bins=32),
    )


@pytest.mark.parametrize("nprocs", [1, 4])
def test_module_results_identical_across_backends(nprocs):
    """End-to-end: a distributed k-means run reaches the same centroids
    under either backend (virtual-time charging is backend-independent)."""
    from repro import smpi
    from repro.modules.module5_kmeans import kmeans_distributed

    out = smpi.run(nprocs, kmeans_distributed, n=120, k=3, max_iter=5, seed=2)
    fast = out[0]
    got = _python_backend(
        "import json\n"
        "from repro import smpi\n"
        "from repro.modules.module5_kmeans import kmeans_distributed\n"
        f"out = smpi.run({nprocs}, kmeans_distributed, n=120, k=3, max_iter=5, seed=2)\n"
        "r = out[0]\n"
        "print(json.dumps({'centroids': r.centroids.tolist(),"
        " 'inertia': r.inertia, 'iterations': r.iterations,"
        " 'compute_time': r.compute_time, 'comm_time': r.comm_time}))\n"
    )
    np.testing.assert_allclose(
        np.asarray(got["centroids"]), fast.centroids, rtol=1e-9
    )
    assert got["iterations"] == fast.iterations
    assert got["inertia"] == pytest.approx(fast.inertia, rel=1e-9)
    # The roofline charge is computed from analytic constants, not from
    # the kernel implementation: virtual time must match exactly.
    assert got["compute_time"] == pytest.approx(fast.compute_time, rel=1e-12)
    assert got["comm_time"] == pytest.approx(fast.comm_time, rel=1e-12)

"""Tests for the run → workload-profile bridge (layers integration)."""

import pytest

from repro import smpi
from repro.cluster import ClusterSpec, NodeSpec, Placement
from repro.errors import ValidationError
from repro.harness.profile import memory_bound_fraction, profile_from_run
from repro.slurm import Scheduler, JobSpec


SPEC = ClusterSpec(num_nodes=1, node=NodeSpec(cores=8))


def compute_heavy(comm):
    comm.compute(flops=1e9)
    comm.barrier()


def memory_heavy(comm):
    comm.compute(nbytes=1e9)
    comm.barrier()


def test_compute_heavy_low_demand():
    out = smpi.launch(4, compute_heavy, cluster=SPEC)
    assert memory_bound_fraction(out) < 0.2


def test_memory_heavy_high_demand():
    out = smpi.launch(4, memory_heavy, cluster=SPEC)
    assert memory_bound_fraction(out) > 0.8


def test_profile_from_run_fields():
    out = smpi.launch(2, memory_heavy, cluster=SPEC)
    profile = profile_from_run(out)
    assert profile.base_runtime == pytest.approx(out.elapsed)
    assert 0.0 <= profile.mem_demand <= 1.0


def test_out_of_range_rank_rejected():
    out = smpi.launch(2, compute_heavy, cluster=SPEC)
    for bad in (-1, 2, 99):
        with pytest.raises(ValidationError, match="out of range"):
            memory_bound_fraction(out, rank=bad)


def test_all_valid_ranks_have_traces():
    out = smpi.launch(4, compute_heavy, cluster=SPEC)
    for rank in range(4):
        assert 0.0 <= memory_bound_fraction(out, rank=rank) <= 1.0


def test_imbalance_from_run():
    from repro.harness import imbalance_from_run

    def skewed(comm):
        comm.compute(seconds=2.0 if comm.rank == 0 else 1.0)
        comm.barrier()

    imb = imbalance_from_run(smpi.launch(2, skewed, cluster=SPEC))
    assert imb.most_loaded_rank == 0
    assert imb.imbalance == pytest.approx(2.0 / 1.5 - 1.0)


def test_untraced_run_rejected():
    out = smpi.launch(2, compute_heavy, cluster=SPEC, trace=False)
    with pytest.raises(ValidationError):
        profile_from_run(out)


def test_module_runs_classify_as_the_paper_says():
    """Module 2 (tiled) measures compute-bound; Module 3 memory-bound."""
    from repro.modules.module2_distance import distributed_distance_matrix
    from repro.modules.module3_sort import sort_activity

    spec = ClusterSpec.monsoon_like(num_nodes=1)
    m2 = smpi.launch(
        8, distributed_distance_matrix, n=2048, dims=90, tile=128,
        cluster=spec, placement=Placement.block(spec, 8),
    )
    m3 = smpi.launch(
        8, sort_activity, n_per_rank=30_000, distribution="uniform",
        method="equal", seed=1,
        cluster=spec, placement=Placement.block(spec, 8),
    )
    assert memory_bound_fraction(m2) < 0.5
    assert memory_bound_fraction(m3) > 0.5
    assert memory_bound_fraction(m3) > memory_bound_fraction(m2)


def test_measured_profiles_predict_coscheduling():
    """Close the Figure 1 loop: profiles measured from real runs show
    the terrible-twins asymmetry in the scheduler."""
    mem = profile_from_run(smpi.launch(4, memory_heavy, cluster=SPEC))
    cpu = profile_from_run(smpi.launch(4, compute_heavy, cluster=SPEC))

    def coschedule(a, b):
        sched = Scheduler(num_nodes=1, cores_per_node=8)
        job = sched.submit(JobSpec("a", a, ntasks=4, time_limit=1e6))
        sched.submit(JobSpec("b", b, ntasks=4, time_limit=1e6))
        sched.run()
        return sched.record(job).elapsed / a.base_runtime

    twins = coschedule(mem, mem)
    mixed = coschedule(mem, cpu)
    assert twins > mixed

"""Tests for the experiment registry.

The heavyweight experiment bodies run under ``benchmarks/``; here we
check the registry contract plus the fast experiments end-to-end.
"""

import pytest

from repro.errors import ValidationError
from repro.harness import EXPERIMENTS, run_experiment
from repro.harness.experiments import ExperimentReport


def test_registry_covers_every_artifact():
    assert set(EXPERIMENTS) == {
        "T1", "T2", "T3", "T4", "F1", "F2",
        "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
        "E9", "E10",  # future-work extension modules
        "A1", "A2", "A3",  # model ablations
    }


def test_every_entry_has_claim_and_title():
    for exp in EXPERIMENTS.values():
        assert exp.title
        assert exp.paper_claim


def test_unknown_experiment():
    with pytest.raises(ValidationError):
        run_experiment("T9")


@pytest.mark.parametrize("eid", ["T1", "T3", "E7", "E8", "E9", "E10", "A1", "A3"])
def test_fast_experiments_pass(eid):
    report = run_experiment(eid)
    assert isinstance(report, ExperimentReport)
    assert report.passed, report.summary_line()
    assert report.text


def test_summary_line_format():
    report = run_experiment("T3")
    line = report.summary_line()
    assert line.startswith("[PASS] T3:")


def test_failed_check_reported():
    report = ExperimentReport("X", "demo", "text", {"good": True, "bad": False})
    assert not report.passed
    assert "bad" in report.summary_line()
    assert "good" not in report.summary_line().split("failed:")[1]

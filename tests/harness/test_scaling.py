"""Tests for the scaling harness."""

import pytest

from repro.cluster import ClusterSpec, NodeSpec
from repro.errors import ValidationError
from repro.harness import run_node_sweep, run_strong_scaling


def compute_worker(comm, flops=1e10):
    comm.compute(flops=flops / comm.size)
    comm.barrier()


def stream_worker(comm, nbytes=1e11):
    comm.compute(nbytes=nbytes / comm.size)
    comm.barrier()


def test_strong_scaling_compute_bound():
    spec = ClusterSpec(num_nodes=1, node=NodeSpec(cores=8))
    res = run_strong_scaling(compute_worker, (1, 2, 4, 8), cluster=spec)
    assert res.speedup[8] > 7.5
    assert res.efficiency[8] > 0.9
    assert res.max_speedup == res.speedup[8]


def test_strong_scaling_memory_bound_plateaus():
    spec = ClusterSpec(num_nodes=1, node=NodeSpec(cores=8))
    res = run_strong_scaling(stream_worker, (1, 2, 4, 8), cluster=spec)
    assert res.speedup[4] == pytest.approx(4.0, rel=0.05)  # up to saturation
    assert res.speedup[8] == pytest.approx(4.0, rel=0.05)  # then flat


def test_spread_placement():
    spec = ClusterSpec(num_nodes=2, node=NodeSpec(cores=8))
    packed = run_strong_scaling(stream_worker, (8,), cluster=spec, placement="block")
    spread = run_strong_scaling(
        stream_worker, (8,), cluster=spec, placement="spread", nodes=2
    )
    assert spread.times[8] < packed.times[8]


def test_empty_plist_rejected():
    with pytest.raises(ValidationError):
        run_strong_scaling(compute_worker, ())


def test_bad_placement_rejected():
    with pytest.raises(ValidationError):
        run_strong_scaling(compute_worker, (1,), placement="diagonal")


def test_node_sweep_memory_bound_improves():
    spec = ClusterSpec(num_nodes=4, node=NodeSpec(cores=8))
    times = run_node_sweep(stream_worker, 8, (1, 2, 4), cluster=spec)
    assert times[2] < times[1]
    assert times[4] <= times[2]


def test_node_sweep_empty_rejected():
    with pytest.raises(ValidationError):
        run_node_sweep(compute_worker, 4, ())


def per_rank_compute_worker(comm):
    comm.compute(flops=1e9)  # fixed work PER RANK (weak scaling)
    comm.barrier()


def per_rank_stream_worker(comm):
    comm.compute(nbytes=1e10)
    comm.barrier()


def test_weak_scaling_compute_bound_is_flat():
    from repro.harness import run_weak_scaling

    spec = ClusterSpec(num_nodes=1, node=NodeSpec(cores=8))
    res = run_weak_scaling(per_rank_compute_worker, (1, 4, 8), cluster=spec)
    assert res.efficiency[8] > 0.95


def test_weak_scaling_memory_bound_degrades():
    from repro.harness import run_weak_scaling

    spec = ClusterSpec(num_nodes=1, node=NodeSpec(cores=8))
    res = run_weak_scaling(per_rank_stream_worker, (1, 4, 8), cluster=spec)
    assert res.efficiency[8] < 0.6  # bandwidth shared among 8 ranks


def test_weak_scaling_empty_rejected():
    from repro.harness import run_weak_scaling

    with pytest.raises(ValidationError):
        run_weak_scaling(per_rank_compute_worker, ())

"""Tests for the roofline cost model."""

import pytest

from repro.errors import ValidationError
from repro.cluster import ComputeCostModel, operational_intensity


def test_compute_bound_time():
    m = ComputeCostModel(flops_per_s=1e9, bandwidth=1e9)
    # High intensity: flops dominate.
    assert m.time(flops=2e9, nbytes=1e6) == pytest.approx(2.0)


def test_memory_bound_time():
    m = ComputeCostModel(flops_per_s=1e9, bandwidth=1e8)
    # Low intensity: bytes dominate.
    assert m.time(flops=1e3, nbytes=1e9) == pytest.approx(10.0)


def test_zero_work_is_free():
    m = ComputeCostModel(flops_per_s=1e9, bandwidth=1e9)
    assert m.time() == 0.0


def test_bound_classification():
    m = ComputeCostModel(flops_per_s=1e10, bandwidth=1e10)  # ridge at 1 flop/B
    assert m.bound(flops=100, nbytes=10) == "compute"
    assert m.bound(flops=10, nbytes=100) == "memory"
    assert m.bound(flops=5, nbytes=0) == "compute"
    assert m.bound(flops=0, nbytes=5) == "memory"


def test_bandwidth_halving_doubles_memory_bound_time():
    fast = ComputeCostModel(flops_per_s=1e12, bandwidth=2e9)
    slow = ComputeCostModel(flops_per_s=1e12, bandwidth=1e9)
    assert slow.time(nbytes=1e9) == pytest.approx(2 * fast.time(nbytes=1e9))


def test_operational_intensity():
    assert operational_intensity(100, 50) == 2.0
    with pytest.raises(ValidationError):
        operational_intensity(1, 0)


def test_invalid_model():
    with pytest.raises(ValidationError):
        ComputeCostModel(flops_per_s=0, bandwidth=1)


def test_negative_work_rejected():
    m = ComputeCostModel(flops_per_s=1, bandwidth=1)
    with pytest.raises(ValidationError):
        m.time(flops=-1)

"""Tests for the roofline chart and the module-kernel placement."""

import pytest

from repro.cluster import ComputeCostModel, render_roofline
from repro.errors import ValidationError
from repro.harness.kernels import module_kernel_roofline, module_kernels


def test_attainable_and_ridge():
    m = ComputeCostModel(flops_per_s=1e10, bandwidth=1e9)
    assert m.ridge_intensity == pytest.approx(10.0)
    assert m.attainable(1.0) == pytest.approx(1e9)
    assert m.attainable(100.0) == pytest.approx(1e10)


def test_render_places_kernels():
    m = ComputeCostModel(flops_per_s=2e10, bandwidth=2e10)
    text = render_roofline(m, {"hot": (100.0, 1.0), "cold": (1.0, 100.0)})
    assert "a = hot" in text and "b = cold" in text
    assert "compute-bound" in text and "memory-bound" in text
    assert "ridge" in text


def test_render_empty_rejected():
    m = ComputeCostModel(flops_per_s=1e9, bandwidth=1e9)
    with pytest.raises(ValidationError):
        render_roofline(m, {})


def test_module_kernels_classification():
    """The chart must encode the paper's claims: tiled distance matrix
    and brute-force scan compute-bound; sort, R-tree, row-wise memory-
    bound (at a single rank's bandwidth share)."""
    m = ComputeCostModel(flops_per_s=2e10, bandwidth=2e10)
    kernels = module_kernels()
    assert m.bound(*kernels["M2 distance matrix, tiled"]) == "compute"
    assert m.bound(*kernels["M4 brute-force scan"]) == "compute"
    assert m.bound(*kernels["M2 distance matrix, row-wise"]) == "memory"
    assert m.bound(*kernels["M3 bucket sort"]) == "memory"
    assert m.bound(*kernels["M4 R-tree traversal"]) == "memory"


def test_module_kernel_roofline_renders():
    text = module_kernel_roofline()
    assert "M3 bucket sort" in text
    assert "M2 distance matrix, tiled" in text


def test_packed_node_lowers_the_roof():
    solo = module_kernel_roofline(ranks_on_node=1)
    packed = module_kernel_roofline(ranks_on_node=32)
    # The ridge shifts right as the bandwidth share shrinks.
    ridge_solo = float(solo.splitlines()[0].split("ridge at ")[1].split(" ")[0])
    ridge_packed = float(packed.splitlines()[0].split("ridge at ")[1].split(" ")[0])
    assert ridge_packed > ridge_solo

"""Tests for the cluster machine model and placements."""

import pytest

from repro.errors import ValidationError
from repro.cluster import ClusterSpec, NodeSpec, NetworkSpec, Placement


def test_defaults_are_valid():
    spec = ClusterSpec()
    assert spec.total_cores == spec.num_nodes * spec.node.cores


def test_monsoon_like():
    spec = ClusterSpec.monsoon_like(num_nodes=2)
    assert spec.node.cores == 32
    assert spec.total_cores == 64


def test_invalid_node_spec():
    with pytest.raises(ValidationError):
        NodeSpec(cores=0)
    with pytest.raises(ValidationError):
        NodeSpec(mem_bandwidth=-1)


def test_network_ptp_time_scales_with_size():
    net = NetworkSpec()
    small = net.ptp_time(100, same_node=True)
    large = net.ptp_time(10_000, same_node=True)
    assert large > small


def test_network_inter_slower_than_intra():
    net = NetworkSpec()
    assert net.ptp_time(4096, same_node=False) > net.ptp_time(4096, same_node=True)


def test_block_placement_packs():
    spec = ClusterSpec(num_nodes=2, node=NodeSpec(cores=4))
    pl = Placement.block(spec, 6)
    assert [pl.node(r) for r in range(6)] == [0, 0, 0, 0, 1, 1]
    assert pl.ranks_on_node(0) == 4
    assert pl.ranks_on_node(1) == 2
    assert pl.nodes_used == 2


def test_spread_placement_round_robins():
    spec = ClusterSpec(num_nodes=2, node=NodeSpec(cores=4))
    pl = Placement.spread(spec, 6)
    assert [pl.node(r) for r in range(6)] == [0, 1, 0, 1, 0, 1]
    assert pl.ranks_on_node(0) == 3


def test_spread_limited_nodes():
    spec = ClusterSpec(num_nodes=4, node=NodeSpec(cores=4))
    pl = Placement.spread(spec, 4, nodes=2)
    assert pl.nodes_used == 2


def test_same_node():
    spec = ClusterSpec(num_nodes=2, node=NodeSpec(cores=4))
    pl = Placement.block(spec, 8)
    assert pl.same_node(0, 3)
    assert not pl.same_node(0, 4)


def test_placement_overflow_rejected():
    spec = ClusterSpec(num_nodes=1, node=NodeSpec(cores=4))
    with pytest.raises(ValidationError):
        Placement.block(spec, 5)


def test_placement_explicit_bad_node():
    spec = ClusterSpec(num_nodes=1, node=NodeSpec(cores=4))
    with pytest.raises(ValidationError):
        Placement(spec, [0, 1])


def test_placement_node_capacity_enforced():
    spec = ClusterSpec(num_nodes=2, node=NodeSpec(cores=2))
    with pytest.raises(ValidationError):
        Placement(spec, [0, 0, 0])

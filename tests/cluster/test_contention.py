"""Tests for memory-bandwidth contention — the mechanism behind Module 4
activity 3 and the Figure 1 co-scheduling scenario."""

import pytest

from repro.cluster import BandwidthArbiter, ClusterSpec, NodeSpec, Placement


def make(nprocs, *, spread=False, nodes=2, cores=8):
    spec = ClusterSpec(num_nodes=nodes, node=NodeSpec(cores=cores))
    pl = (
        Placement.spread(spec, nprocs, nodes=nodes)
        if spread
        else Placement.block(spec, nprocs)
    )
    return spec, BandwidthArbiter(spec, pl)


def test_single_rank_capped_by_core_bandwidth():
    """One core cannot saturate the memory controller."""
    spec, arb = make(1)
    assert arb.bandwidth_share(0) == pytest.approx(spec.node.core_mem_bandwidth)
    assert arb.bandwidth_share(0) < spec.node.mem_bandwidth


def test_packed_ranks_share_bandwidth():
    spec, arb = make(8)  # 8 ranks, block => all on node 0
    assert arb.bandwidth_share(0) == pytest.approx(spec.node.mem_bandwidth / 8)


def test_saturation_point():
    """Below the saturation rank count, each rank gets its core cap."""
    spec, arb = make(2)
    # 2 ranks: node bw / 2 exceeds the core cap, so the cap binds.
    assert arb.bandwidth_share(0) == pytest.approx(spec.node.core_mem_bandwidth)


def test_spread_beats_packed_aggregate():
    """The Module 4 activity 3 lesson: p ranks on 2 nodes have twice the
    aggregate bandwidth of p ranks packed on 1 node."""
    _, packed = make(8, cores=8, nodes=2)  # block -> all 8 on node 0
    _, spread = make(8, spread=True, cores=8, nodes=2)
    assert packed.aggregate_bandwidth() * 2 == pytest.approx(
        spread.aggregate_bandwidth()
    )


def test_external_demand_shrinks_share():
    spec, arb = make(2)
    before = arb.bandwidth_share(0)
    arb.set_external_demand(0, 6.0)  # a co-scheduled 6-rank-equivalent job
    after = arb.bandwidth_share(0)
    assert after == pytest.approx(spec.node.mem_bandwidth / 8)
    assert after < before


def test_external_demand_other_node_no_effect():
    _, arb = make(2)
    before = arb.bandwidth_share(0)
    arb.set_external_demand(1, 10.0)
    assert arb.bandwidth_share(0) == before


def test_node_demand():
    _, arb = make(3)
    assert arb.node_demand(0) == 3
    arb.set_external_demand(0, 1.5)
    assert arb.node_demand(0) == 4.5


def test_negative_demand_rejected():
    _, arb = make(1)
    with pytest.raises(Exception):
        arb.set_external_demand(0, -1)


def test_aggregate_with_external_demand():
    spec, arb = make(4, cores=8, nodes=2)  # 4 ranks packed on node 0
    base = arb.aggregate_bandwidth()
    assert base == pytest.approx(spec.node.mem_bandwidth)  # exactly saturated
    arb.set_external_demand(0, 4.0)
    assert arb.aggregate_bandwidth() == pytest.approx(base / 2)

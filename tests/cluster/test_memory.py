"""Tests for the cache simulator and the analytic miss model."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.cluster import CacheSim, analytic_distance_matrix_misses
from repro.cluster.memory import lines_of_slice


def test_cold_misses():
    c = CacheSim(size_bytes=1024, line_bytes=64, ways=2)
    misses = c.access_lines([0, 1, 2, 3])
    assert misses == 4
    assert c.stats.misses == 4
    assert c.stats.hits == 0


def test_hits_on_reuse():
    c = CacheSim(size_bytes=1024, line_bytes=64, ways=2)
    c.access_lines([0, 1, 0, 1, 0])
    assert c.stats.hits == 3
    assert c.stats.misses == 2


def test_lru_eviction():
    # 1 set, 2 ways: lines 0,1 fit; line 2 evicts LRU (0).
    c = CacheSim(size_bytes=128, line_bytes=64, ways=2)
    assert c.num_sets == 1
    c.access_lines([0, 1, 2])  # 2 evicts 0
    assert c.contains_line(1) and c.contains_line(2)
    assert not c.contains_line(0)
    c.access_lines([0])  # miss again
    assert c.stats.misses == 4


def test_lru_order_updates_on_hit():
    c = CacheSim(size_bytes=128, line_bytes=64, ways=2)
    c.access_lines([0, 1, 0, 2])  # hit on 0 makes 1 the LRU victim
    assert c.contains_line(0) and c.contains_line(2)
    assert not c.contains_line(1)


def test_set_mapping():
    c = CacheSim(size_bytes=256, line_bytes=64, ways=1)  # 4 direct-mapped sets
    c.access_lines([0, 4])  # same set, direct mapped: conflict
    assert not c.contains_line(0)
    c.access_lines([1])  # different set: no conflict with 4
    assert c.contains_line(4) and c.contains_line(1)


def test_access_bytes_to_lines():
    c = CacheSim(size_bytes=1024, line_bytes=64, ways=2)
    c.access([0, 63, 64])  # two lines
    assert c.stats.misses == 2
    assert c.stats.hits == 1


def test_miss_rate():
    c = CacheSim(size_bytes=1024, line_bytes=64, ways=2)
    assert c.stats.miss_rate == 0.0
    c.access_lines([0, 0])
    assert c.stats.miss_rate == pytest.approx(0.5)
    assert c.stats.hit_rate == pytest.approx(0.5)


def test_flush_and_reset():
    c = CacheSim(size_bytes=1024, line_bytes=64, ways=2)
    c.access_lines([0, 1])
    c.reset_stats()
    assert c.stats.accesses == 0
    assert c.contains_line(0)  # contents preserved
    c.flush()
    assert not c.contains_line(0)


def test_bad_geometry_rejected():
    with pytest.raises(ValidationError):
        CacheSim(size_bytes=1000, line_bytes=64, ways=3)


def test_negative_line_rejected():
    c = CacheSim(size_bytes=1024, line_bytes=64, ways=2)
    with pytest.raises(ValidationError):
        c.access_lines([-1])


def test_lines_of_slice():
    lines = lines_of_slice(base_addr=0, nbytes=720, line_bytes=64)
    assert len(lines) == 12  # 720 B spans 12 lines from offset 0
    lines = lines_of_slice(base_addr=60, nbytes=8, line_bytes=64)
    assert len(lines) == 2  # straddles a boundary


def test_analytic_rowwise_vs_tiled():
    # 4096 x 90-d doubles = 2.9 MB, decisively overflowing a 1 MiB cache.
    n, d, cache = 4096, 90, 1 << 20
    row = analytic_distance_matrix_misses(n, d, cache)
    tiled = analytic_distance_matrix_misses(n, d, cache, tile=512)
    assert tiled < row / 100  # tiling wins by orders of magnitude


def test_analytic_tile_too_large_degrades():
    n, d, cache = 4096, 90, 1 << 16
    huge_tile = analytic_distance_matrix_misses(n, d, cache, tile=4096)
    row = analytic_distance_matrix_misses(n, d, cache)
    assert huge_tile == row


def test_analytic_small_dataset_compulsory_only():
    n, d = 16, 8
    misses = analytic_distance_matrix_misses(n, d, cache_bytes=1 << 20)
    assert misses == 2 * n * int(np.ceil(d * 8 / 64))


def test_simulator_agrees_with_analytic_rowwise_order_of_magnitude():
    """The analytic model should track the simulator within ~2x for a
    dataset that decisively overflows the cache (row-wise traversal)."""
    n, d = 64, 16  # point = 128 B = 2 lines; dataset 8 KiB >> 2 KiB cache
    cache = CacheSim(size_bytes=2048, line_bytes=64, ways=4)
    lines_per_point = 2
    for i in range(n):
        for j in range(n):
            cache.access_lines(
                list(range(i * lines_per_point, (i + 1) * lines_per_point))
                + list(range((n + j) * lines_per_point, (n + j + 1) * lines_per_point))
            )
    predicted = analytic_distance_matrix_misses(n, d, 2048)
    measured = cache.stats.misses
    assert 0.5 < measured / predicted < 2.0

"""Shim for environments without the ``wheel`` package (offline legacy
editable installs via ``pip install -e . --no-use-pep517``)."""
from setuptools import setup

setup()
